//! `vpr` — FPGA placement (SPEC CPU2000 175.vpr). Placement's inner loop
//! evaluates candidate moves: pick a block, chase its net pointer, then
//! visit the net's pins (pointers back to scattered blocks) to recompute
//! the bounding-box cost. The net and pin-block loads are delinquent.

use crate::layout::{rng_for, Scatter, ARRAYS, GLOBALS, HEAP};
use crate::Workload;
use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};

/// Pins per net.
const PINS: u64 = 4;

/// Build the workload.
pub fn build(seed: u64) -> Workload {
    let blocks: usize = 512;
    let nets: usize = 512;
    let moves: u64 = 800;

    let mut rng = rng_for("vpr", seed);
    let mut pb = ProgramBuilder::new();

    // Blocks: net ptr(+0), x(+8), y(+16). Nets: pin ptrs(+0..8*PINS).
    let mut bs = Scatter::new(HEAP, 8 << 20, 64, blocks, &mut rng);
    let baddrs: Vec<u64> = (0..blocks).map(|_| bs.alloc()).collect();
    let mut ns = Scatter::new(HEAP + (8 << 20), 8 << 20, 64, nets, &mut rng);
    let naddrs: Vec<u64> = (0..nets).map(|_| ns.alloc()).collect();
    for &n in &naddrs {
        for k in 0..PINS {
            pb.data_word(n + 8 * k, baddrs[rng.gen_range(0..blocks)]);
        }
    }
    for (i, &b) in baddrs.iter().enumerate() {
        pb.data_word(b, naddrs[rng.gen_range(0..nets)]);
        pb.data_word(b + 8, (i as u64) % 64);
        pb.data_word(b + 16, (i as u64 / 64) % 64);
    }
    // Move sequence: pointers to blocks (sequential array of scattered
    // pointers, like vpr's block array indexed by the RNG).
    for i in 0..moves {
        pb.data_word(ARRAYS + 8 * i, baddrs[rng.gen_range(0..blocks)]);
    }

    let mut f = pb.function("try_swap");
    let e = f.entry_block();
    let mloop = f.new_block();
    let ploop = f.new_block();
    let mnext = f.new_block();
    let exit = f.new_block();

    let (mp, mend, blk, net, k, pin, x, y, cost, t, p) = (
        Reg(64),
        Reg(65),
        Reg(66),
        Reg(67),
        Reg(68),
        Reg(69),
        Reg(70),
        Reg(71),
        Reg(72),
        Reg(73),
        Reg(74),
    );
    f.at(e).movi(mp, ARRAYS as i64).movi(mend, (ARRAYS + moves * 8) as i64).movi(cost, 0).br(mloop);
    f.at(mloop)
        .ld(blk, mp, 0) // move target block (sequential array)
        .ld(net, blk, 0) // delinquent: block -> net
        .movi(k, 0)
        .br(ploop);
    f.at(ploop)
        .shl(t, k, 3)
        .add(t, t, Operand::Reg(net))
        .ld(pin, t, 0) // pin pointer (net's line)
        .ld(x, pin, 8) // delinquent: pin block x
        .ld(y, pin, 16) // pin block y (same line)
        .add(cost, cost, Operand::Reg(x))
        .add(cost, cost, Operand::Reg(y))
        .add(k, k, 1)
        .cmp(CmpKind::Lt, p, k, PINS as i64)
        .br_cond(p, ploop, mnext);
    f.at(mnext).add(mp, mp, 8).cmp(CmpKind::Lt, p, mp, Operand::Reg(mend)).br_cond(p, mloop, exit);
    f.at(exit).movi(Reg(80), GLOBALS as i64).st(cost, Reg(80), 0).halt();

    let main = f.finish();
    Workload { name: "vpr", seed, program: pb.finish_with(main) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::{simulate, MachineConfig};

    #[test]
    fn runs_and_is_memory_bound() {
        let w = build(1);
        ssp_ir::verify::verify(&w.program).unwrap();
        let r = simulate(&w.program, &MachineConfig::in_order());
        assert!(r.halted);
        let agg = r.load_stats_all();
        assert!(agg.accesses >= 800 * (2 + 4 * 3) as u64 - 100);
        assert!(agg.l1_miss_rate() > 0.1, "miss rate {}", agg.l1_miss_rate());
    }

    #[test]
    fn pin_loop_runs_four_times_per_move() {
        let w = build(1);
        let r = simulate(&w.program, &MachineConfig::in_order());
        // 10 insts per pin iteration x 4 x 800 = 32000 plus move overhead.
        assert!(r.main_insts > 32_000 && r.main_insts < 45_000, "{}", r.main_insts);
    }
}
