//! Synthetic pointer-intensive benchmark programs for the SSP
//! reproduction — the seven programs of §4.1, rebuilt in the [`ssp_ir`]
//! instruction set with pseudo-randomly scattered heaps (see DESIGN.md's
//! substitution table for what each stands in for):
//!
//! * [`em3d`] — electromagnetic propagation (Olden)
//! * [`health`] — health-care simulation (Olden)
//! * [`mst`] — minimum spanning tree hash lookups (Olden)
//! * [`treeadd::build_df`] / [`treeadd::build_bf`] — depth-first and
//!   breadth-first tree reductions (Olden, the paper's two variants)
//! * [`mcf`] — network-simplex reduced-cost scan (SPEC CPU2000)
//! * [`vpr`] — FPGA placement move evaluation (SPEC CPU2000)
//!
//! Every builder is deterministic in its seed, so profiles, adaptation,
//! and simulation are exactly reproducible.
//!
//! # Example
//!
//! ```
//! let suite = ssp_workloads::suite(42);
//! assert_eq!(suite.len(), 7);
//! for w in &suite {
//!     ssp_ir::verify::verify(&w.program).unwrap();
//! }
//! ```

#![warn(missing_docs)]

pub mod em3d;
pub mod health;
pub mod layout;
pub mod mcf;
pub mod mst;
pub mod rng;
pub mod treeadd;
pub mod vpr;

use ssp_ir::verify::VerifyError;
use ssp_ir::Program;
use std::fmt;

/// A named benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// The RNG seed the builder expanded the data structures from.
    /// `(name, seed)` identifies the program bit-for-bit, which lets
    /// `ssp-bench` key its baseline-simulation cache on it.
    pub seed: u64,
    /// The program (with its initialized data image).
    pub program: Program,
}

/// Why a workload lookup failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkloadError {
    /// No benchmark with the requested name.
    UnknownName(String),
    /// The generated program failed IR verification — a bug in the
    /// workload builder, reported instead of panicking so batch drivers
    /// can skip the workload and keep going.
    Verify {
        /// Benchmark name.
        name: &'static str,
        /// The verifier diagnostic.
        error: VerifyError,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::UnknownName(n) => {
                write!(f, "unknown benchmark {n:?} (known: {})", NAMES.join(", "))
            }
            WorkloadError::Verify { name, error } => {
                write!(f, "workload {name} fails verification: {error}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// The full seven-benchmark suite of §4.1, in the paper's order.
pub fn suite(seed: u64) -> Vec<Workload> {
    vec![
        em3d::build(seed),
        health::build(seed),
        mst::build(seed),
        treeadd::build_df(seed),
        treeadd::build_bf(seed),
        mcf::build(seed),
        vpr::build(seed),
    ]
}

/// Benchmark names accepted by [`by_name`], in the paper's order.
pub const NAMES: [&str; 7] = ["em3d", "health", "mst", "treeadd.df", "treeadd.bf", "mcf", "vpr"];

/// Look up one benchmark by name; the returned program is verified.
pub fn by_name(name: &str, seed: u64) -> Result<Workload, WorkloadError> {
    let w = match name {
        "em3d" => em3d::build(seed),
        "health" => health::build(seed),
        "mst" => mst::build(seed),
        "treeadd.df" => treeadd::build_df(seed),
        "treeadd.bf" => treeadd::build_bf(seed),
        "mcf" => mcf::build(seed),
        "vpr" => vpr::build(seed),
        _ => return Err(WorkloadError::UnknownName(name.to_owned())),
    };
    match ssp_ir::verify::verify(&w.program) {
        Ok(()) => Ok(w),
        Err(error) => Err(WorkloadError::Verify { name: w.name, error }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_paper_order_and_verifies() {
        let s = suite(1);
        let names: Vec<&str> = s.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["em3d", "health", "mst", "treeadd.df", "treeadd.bf", "mcf", "vpr"]);
        for w in &s {
            ssp_ir::verify::verify(&w.program)
                .unwrap_or_else(|e| panic!("{} fails verification: {e}", w.name));
        }
    }

    #[test]
    fn by_name_matches_suite() {
        for w in suite(9) {
            let again = by_name(w.name, 9).unwrap();
            assert_eq!(w.program, again.program, "{} deterministic", w.name);
        }
        assert_eq!(by_name("nope", 1).unwrap_err(), WorkloadError::UnknownName("nope".to_owned()));
    }

    #[test]
    fn names_list_matches_by_name() {
        for name in NAMES {
            assert_eq!(by_name(name, 3).unwrap().name, name);
        }
    }
}
