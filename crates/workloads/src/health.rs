//! `health` — the Colombian health-care simulation (Olden): a 4-ary
//! hierarchy of villages, each with a linked list of patients whose
//! records are updated every simulation step. Villages are processed
//! breadth-first through a worklist; patient records and village
//! structures are scattered, making the patient-list chase and the
//! village loads delinquent. The per-village patient walk lives in its
//! own procedure, giving the slicer an interprocedural boundary (the
//! situation §4.5 discusses against hand adaptation).

use crate::layout::{rng_for, Scatter, ARRAYS, GLOBALS, HEAP};
use crate::Workload;
use ssp_ir::reg::conv;
use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};

/// Children per village.
const FANOUT: u64 = 4;
/// Hierarchy depth (levels).
const DEPTH: u32 = 4;

/// Build the workload.
pub fn build(seed: u64) -> Workload {
    let villages: usize = (0..=DEPTH).map(|d| FANOUT.pow(d) as usize).sum(); // 341
    let steps: i64 = 2;

    let mut rng = rng_for("health", seed);
    let mut pb = ProgramBuilder::new();

    // Village: children[0..4] (+0..+24), patients head (+32).
    let mut vs = Scatter::new(HEAP, 8 << 20, 128, villages, &mut rng);
    let vaddrs: Vec<u64> = (0..villages).map(|_| vs.alloc()).collect();
    // Patients: next(+0), time(+8), hosp(+16).
    let patients_per = 4usize;
    let mut ps = Scatter::new(HEAP + (8 << 20), 8 << 20, 64, villages * patients_per, &mut rng);
    for (i, &v) in vaddrs.iter().enumerate() {
        for c in 0..FANOUT as usize {
            let child = FANOUT as usize * i + c + 1;
            let addr = if child < villages { vaddrs[child] } else { 0 };
            pb.data_word(v + 8 * c as u64, addr);
        }
        pb.data_word(v + 40, (i as u64) % 5); // level field
                                              // Patient list.
        let mut head = 0u64;
        for _ in 0..patients_per {
            let pa = ps.alloc();
            pb.data_word(pa, head);
            pb.data_word(pa + 8, rng.gen_range(0..100));
            pb.data_word(pa + 16, v);
            head = pa;
        }
        pb.data_word(v + 32, head);
    }
    pb.data_word(GLOBALS, vaddrs[0]);

    let main_id = pb.declare();
    let visit_id = pb.declare();

    // main: per step, breadth-first worklist over villages; for each,
    // call visit(v), then enqueue the children.
    let mut m = pb.define(main_id, "main");
    let e = m.entry_block();
    let step_b = m.new_block();
    let wloop = m.new_block();
    let child_l = m.new_block();
    let child_push = m.new_block();
    let child_skip = m.new_block();
    let wnext = m.new_block();
    let step_end = m.new_block();
    let exit = m.new_block();

    let (root, step, headp, tailp, v, c, caddr, p, lvl, stat) =
        (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70), Reg(71), Reg(72), Reg(73));
    m.at(e)
        .movi(Reg(80), GLOBALS as i64)
        .ld(root, Reg(80), 0)
        .movi(step, 0)
        .movi(stat, 0)
        .br(step_b);
    m.at(step_b)
        .movi(headp, ARRAYS as i64)
        .movi(tailp, ARRAYS as i64)
        .st(root, tailp, 0)
        .add(tailp, tailp, 8)
        .br(wloop);
    m.at(wloop).cmp(CmpKind::Eq, p, headp, Operand::Reg(tailp)).br_cond(p, step_end, child_l);
    m.at(child_l)
        .ld(v, headp, 0) // worklist slot (sequential)
        .add(headp, headp, 8)
        .ld(lvl, v, 40) // delinquent: village level (first touch of the line)
        .add(stat, stat, Operand::Reg(lvl))
        .mov(conv::arg(0), v)
        .call(visit_id, 1)
        .movi(c, 0)
        .br(child_push);
    m.at(child_push)
        .shl(caddr, c, 3)
        .add(caddr, caddr, Operand::Reg(v))
        .ld(caddr, caddr, 0) // delinquent: village child pointer
        .cmp(CmpKind::Eq, p, caddr, 0)
        .br_cond(p, wnext, child_skip);
    m.at(child_skip)
        .st(caddr, tailp, 0)
        .add(tailp, tailp, 8)
        .add(c, c, 1)
        .cmp(CmpKind::Lt, p, c, FANOUT as i64)
        .br_cond(p, child_push, wnext);
    m.at(wnext).br(wloop);
    m.at(step_end).add(step, step, 1).cmp(CmpKind::SLt, p, step, steps).br_cond(p, step_b, exit);
    m.at(exit).movi(Reg(80), GLOBALS as i64).st(stat, Reg(80), 8).halt();
    let m = m.finish();

    // visit(v): walk the patient list bumping each patient's time.
    let mut vi = pb.define(visit_id, "check_patients");
    let e2 = vi.entry_block();
    let ploop = vi.new_block();
    let pdone = vi.new_block();
    let body = vi.new_block();
    let (pat, t, q) = (Reg(20), Reg(21), Reg(22));
    vi.at(e2).ld(pat, conv::arg(0), 32).br(ploop);
    vi.at(ploop).cmp(CmpKind::Eq, q, pat, 0).br_cond(q, pdone, body);
    vi.at(body)
        .ld(t, pat, 8) // delinquent: patient time
        .add(t, t, 1)
        .st(t, pat, 8)
        .ld(pat, pat, 0) // delinquent: patient list chase
        .br(ploop);
    vi.at(pdone).ret();
    let vi = vi.finish();

    pb.install(m);
    pb.install(vi);
    Workload { name: "health", seed, program: pb.finish(main_id) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::{simulate, MachineConfig};

    #[test]
    fn runs_and_is_memory_bound() {
        let w = build(1);
        ssp_ir::verify::verify(&w.program).unwrap();
        let r = simulate(&w.program, &MachineConfig::in_order());
        assert!(r.halted);
        let agg = r.load_stats_all();
        // 341 villages x (1 head + 4 patients x 2 loads) x 2 steps, plus
        // child-pointer loads.
        assert!(agg.accesses >= 341 * 9 * 2);
        assert!(agg.l1_miss_rate() > 0.2, "miss rate {}", agg.l1_miss_rate());
    }

    #[test]
    fn patient_lists_fully_walked() {
        let w = build(2);
        let r = simulate(&w.program, &MachineConfig::in_order());
        // Patient-chase loads: 341 villages x 4 patients x 2 steps each
        // execute the `ld pat.next`: find a static load with exactly that
        // dynamic count.
        let expected = 341 * 4 * 2;
        assert!(
            r.loads.values().any(|s| s.accesses == expected),
            "some load runs {expected} times"
        );
    }
}
