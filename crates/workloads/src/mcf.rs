//! `mcf` — combinatorial optimization (SPEC CPU2000 181.mcf).
//!
//! Models `primal_bea_map`'s delinquent loop (the paper's Figure 3
//! example): a sequential array of arcs whose `tail`/`head` pointers lead
//! to network nodes scattered across an 8 MB heap; the loop computes each
//! arc's reduced cost from the two node potentials and tracks the most
//! negative one. The two `potential` loads are the delinquent loads.

use crate::layout::{rng_for, Scatter, ARRAYS, GLOBALS, HEAP};
use crate::Workload;
use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};

/// Arc record size (one cache line, like mcf's 64-byte arc struct).
const ARC_SIZE: u64 = 64;

/// Build the workload.
pub fn build(seed: u64) -> Workload {
    let arcs: u64 = 1500;
    let nodes: usize = 1024;
    let passes: i64 = 2;

    let mut rng = rng_for("mcf", seed);
    let mut pb = ProgramBuilder::new();

    // Nodes scattered over 8 MB; node.potential at +0.
    let mut scatter = Scatter::new(HEAP, 8 << 20, 64, nodes, &mut rng);
    let node_addrs: Vec<u64> = (0..nodes).map(|_| scatter.alloc()).collect();
    for (i, &a) in node_addrs.iter().enumerate() {
        pb.data_word(a, (i as u64) * 3 + 1); // potential
    }
    // Arc array: tail(+0), head(+8), cost(+16).
    for i in 0..arcs {
        let base = ARRAYS + i * ARC_SIZE;
        let tail = node_addrs[rng.gen_range(0..nodes)];
        let head = node_addrs[rng.gen_range(0..nodes)];
        pb.data_word(base, tail);
        pb.data_word(base + 8, head);
        pb.data_word(base + 16, rng.gen_range(0..1000));
    }

    let mut f = pb.function("primal_bea_map");
    let e = f.entry_block();
    let outer = f.new_block();
    let body = f.new_block();
    let upd = f.new_block();
    let cont = f.new_block();
    let pass_end = f.new_block();
    let exit = f.new_block();

    let (arc0, k, pass, best, barc) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68));
    let (arc, tail, pot_t, head, pot_h, cost, red, p) =
        (Reg(70), Reg(71), Reg(72), Reg(73), Reg(74), Reg(75), Reg(76), Reg(77));

    f.at(e)
        .movi(arc0, ARRAYS as i64)
        .movi(k, (ARRAYS + arcs * ARC_SIZE) as i64)
        .movi(pass, 0)
        .movi(best, i64::MAX)
        .movi(barc, 0)
        .br(outer);
    f.at(outer).mov(arc, arc0).br(body);
    f.at(body)
        .ld(tail, arc, 0)
        .ld(pot_t, tail, 0) // delinquent: tail->potential
        .ld(head, arc, 8)
        .ld(pot_h, head, 0) // delinquent: head->potential
        .ld(cost, arc, 16)
        .add(red, cost, Operand::Reg(pot_t))
        .sub(red, red, Operand::Reg(pot_h))
        .cmp(CmpKind::SLt, p, red, Operand::Reg(best))
        .br_cond(p, upd, cont);
    f.at(upd).mov(best, red).mov(barc, arc).br(cont);
    f.at(cont)
        .add(arc, arc, ARC_SIZE as i64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, pass_end);
    f.at(pass_end).add(pass, pass, 1).cmp(CmpKind::SLt, p, pass, passes).br_cond(p, outer, exit);
    f.at(exit).movi(Reg(80), GLOBALS as i64).st(best, Reg(80), 0).st(barc, Reg(80), 8).halt();

    let main = f.finish();
    Workload { name: "mcf", seed, program: pb.finish_with(main) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::{simulate, MachineConfig};

    #[test]
    fn runs_to_completion_and_misses() {
        let w = build(1);
        ssp_ir::verify::verify(&w.program).unwrap();
        let r = simulate(&w.program, &MachineConfig::in_order());
        assert!(r.halted);
        let agg = r.load_stats_all();
        assert!(agg.accesses >= 1500 * 5, "five loads per arc per pass");
        assert!(agg.l1_miss_rate() > 0.2, "memory bound: {}", agg.l1_miss_rate());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(3);
        let b = build(3);
        assert_eq!(a.program, b.program);
        let c = build(4);
        assert_ne!(a.program.image, c.program.image);
    }
}
