//! Program slicing for software-based speculative precomputation.
//!
//! This crate implements §3.1 of the paper: extraction of *p-slices* —
//! the minimal instruction sequences that produce delinquent-load
//! addresses — using context-sensitive interprocedural analysis with
//! slice summaries ([`summary`]), profile-driven speculative slicing, and
//! region-based slice growth ([`slicer`]). The dependence graphs the
//! scheduler consumes are built by [`depgraph`].

#![warn(missing_docs)]

pub mod analysis;
pub mod depgraph;
pub mod slicer;
pub mod summary;

pub use analysis::{Analyses, FuncAnalyses};
pub use depgraph::{latency_of, latency_of_at, DepEdge, DepKind, RegionDepGraph};
pub use slicer::{Slice, SliceError, SliceOptions, Slicer};
pub use summary::{Summaries, Summary};
