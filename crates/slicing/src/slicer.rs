//! Backward program slicing for speculative precomputation (§3.1).
//!
//! Given a delinquent load and a code region, [`Slicer::slice_in_region`]
//! computes the p-slice: the minimal instruction set producing the load's
//! address, restricted to the region. Values defined outside the region
//! become *live-ins*, to be copied through the live-in buffer at spawn.
//!
//! Three refinements from the paper are implemented:
//!
//! * **Context-sensitive descent** — a value produced by a call is traced
//!   into the callee via [`crate::summary::Summaries`] with matched
//!   parameter bindings, avoiding the unrealizable-path imprecision of
//!   Weiser-style slicing.
//! * **Speculative (control-flow) slicing** — block profiles filter out
//!   definitions on unexecuted paths, and the profiled dynamic call graph
//!   resolves indirect calls; both shrink slices at a (profiled) risk of
//!   wrong addresses, which SSP tolerates by construction.
//! * **Region-based growth** — the slice is computed against an explicit
//!   block set; the region walker (§3.4.1) re-slices against successively
//!   larger regions until the slack is big enough.

use crate::analysis::Analyses;
use crate::summary::Summaries;
use ssp_ir::reg::conv;
use ssp_ir::{BlockId, FuncId, InstRef, Op, Program, Reg};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// Why a slice request could not be satisfied.
///
/// Slicing failures are expected inputs for batch drivers (the fuzz
/// oracle feeds the slicer arbitrary roots), so they are surfaced as
/// values instead of panics and degrade into per-load `skipped` entries
/// in `ssp_codegen::AdaptReport`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SliceError {
    /// The requested slice root is not a load instruction.
    RootNotLoad(InstRef),
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::RootNotLoad(at) => write!(f, "slice root {at} is not a load"),
        }
    }
}

impl std::error::Error for SliceError {}

/// Knobs for the slicer.
#[derive(Clone, Debug)]
pub struct SliceOptions {
    /// Enable control-flow speculative slicing (profile pruning).
    pub speculative: bool,
    /// Definitions in blocks executed fewer than this many times are
    /// treated as on unexecuted paths (speculative mode only).
    pub min_block_count: u64,
    /// Follow control dependences into the slice (needed for executable
    /// loop slices; disable for pure value slices).
    pub control_deps: bool,
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions { speculative: true, min_block_count: 1, control_deps: true }
    }
}

/// A p-slice: the precomputation content for one delinquent load.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Slice {
    /// The delinquent load being precomputed.
    pub root: InstRef,
    /// Function the region lives in.
    pub func: FuncId,
    /// The region's blocks.
    pub region: Vec<BlockId>,
    /// Slice instructions inside the region (program locations; codegen
    /// clones them with fresh tags).
    pub insts: BTreeSet<InstRef>,
    /// Instructions pulled in from callees (interprocedural slices).
    pub callee_insts: BTreeSet<InstRef>,
    /// Registers whose values must be captured at spawn time.
    pub live_ins: BTreeSet<Reg>,
    /// Dependence edges pruned by speculative slicing.
    pub pruned: u64,
    /// Whether summary descent marked any contributing value impure
    /// (its use is a speculation).
    pub speculative_values: bool,
}

impl Slice {
    /// Slice size in instructions (region + callee parts), excluding the
    /// root load itself.
    pub fn size(&self) -> usize {
        self.insts.len() + self.callee_insts.len() - usize::from(self.insts.contains(&self.root))
    }

    /// Whether the slice crosses procedure boundaries.
    pub fn interprocedural(&self) -> bool {
        !self.callee_insts.is_empty()
    }

    /// Number of live-in values to copy at spawn.
    pub fn live_in_count(&self) -> usize {
        self.live_ins.len()
    }
}

/// The slicing engine. Holds the analysis and summary caches across
/// requests, "exploiting redundancy in slice computation".
#[derive(Debug)]
pub struct Slicer<'p> {
    prog: &'p Program,
    profile: &'p ssp_sim::Profile,
    /// Analysis cache (public so co-operating passes can share it).
    pub analyses: Analyses,
    summaries: Summaries,
    opts: SliceOptions,
}

impl<'p> Slicer<'p> {
    /// Create a slicer for `prog` with profile feedback.
    pub fn new(prog: &'p Program, profile: &'p ssp_sim::Profile, opts: SliceOptions) -> Self {
        Slicer { prog, profile, analyses: Analyses::new(), summaries: Summaries::new(), opts }
    }

    /// The program being sliced.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// Compute the backward slice of `root`'s address within the region
    /// `blocks` (all in `root.func`).
    ///
    /// Returns [`SliceError::RootNotLoad`] when `root` is not a load
    /// instruction (p-slices precompute load addresses; any other root is
    /// a caller bug or an adversarial input, not a reason to abort).
    pub fn slice_in_region(
        &mut self,
        root: InstRef,
        blocks: &[BlockId],
    ) -> Result<Slice, SliceError> {
        let Op::Ld { base, .. } = self.prog.inst(root).op else {
            return Err(SliceError::RootNotLoad(root));
        };
        let fid = root.func;
        let region: HashSet<BlockId> = blocks.iter().copied().collect();
        let mut slice = Slice {
            root,
            func: fid,
            region: blocks.to_vec(),
            insts: BTreeSet::new(),
            callee_insts: BTreeSet::new(),
            live_ins: BTreeSet::new(),
            pruned: 0,
            speculative_values: false,
        };
        slice.insts.insert(root);

        let mut work: Vec<(InstRef, Reg)> = vec![(root, base)];
        let mut seen: HashSet<(InstRef, Reg)> = HashSet::new();
        // Control dependences of the root itself.
        self.queue_control_deps(root, &region, &mut slice, &mut work);

        while let Some((at, r)) = work.pop() {
            if r.is_zero() || !seen.insert((at, r)) {
                continue;
            }
            let defs = {
                let fa = self.analyses.get(self.prog, fid);
                fa.rd.reaching(at.block, at.idx, r)
            };
            if defs.is_empty() {
                slice.live_ins.insert(r);
                continue;
            }
            let mut outside = false;
            for d in &defs {
                if !region.contains(&d.at.block) {
                    outside = true;
                    continue;
                }
                // Speculative slicing: ignore defs on unexecuted paths.
                if self.opts.speculative
                    && self.profile.block_count(fid, d.at.block) < self.opts.min_block_count
                {
                    slice.pruned += 1;
                    continue;
                }
                let dop = self.prog.inst(d.at).op.clone();
                match dop {
                    Op::Call { callee, .. } if r == conv::RV => {
                        self.descend(d.at, callee, &mut slice, &mut work);
                    }
                    Op::CallInd { .. } if r == conv::RV && self.opts.speculative => {
                        // Resolve via the dynamic call graph; take the
                        // most frequent profiled target.
                        let target = self
                            .profile
                            .indirect_targets
                            .get(&d.at)
                            .and_then(|m| m.iter().max_by_key(|(_, c)| **c))
                            .map(|(f, _)| *f);
                        match target {
                            Some(t) => {
                                slice.speculative_values = true;
                                self.descend(d.at, t, &mut slice, &mut work);
                            }
                            None => {
                                slice.speculative_values = true;
                                slice.live_ins.insert(r);
                            }
                        }
                    }
                    Op::Call { .. } | Op::CallInd { .. } => {
                        // A clobber (or unresolvable result): capture the
                        // main thread's value at spawn instead —
                        // speculative, SSP tolerates staleness.
                        slice.speculative_values = true;
                        slice.live_ins.insert(r);
                    }
                    _ => {
                        if slice.insts.insert(d.at) {
                            self.queue_control_deps(d.at, &region, &mut slice, &mut work);
                        }
                        let mut uses = Vec::new();
                        dop.uses_into(&mut uses);
                        for u in uses {
                            work.push((d.at, u));
                        }
                    }
                }
            }
            if outside {
                slice.live_ins.insert(r);
            }
        }
        Ok(slice)
    }

    /// Pull a callee's value computation into the slice via its summary.
    fn descend(
        &mut self,
        call_at: InstRef,
        callee: FuncId,
        slice: &mut Slice,
        work: &mut Vec<(InstRef, Reg)>,
    ) {
        let sum = self.summaries.get(self.prog, &mut self.analyses, callee, conv::RV);
        slice.speculative_values |= sum.impure;
        slice.insts.insert(call_at);
        slice.callee_insts.extend(sum.insts.iter().copied());
        // contextmap: the callee's needs are actual registers at the call
        // site — resolve them in the caller, before the call.
        for n in sum.needs {
            work.push((call_at, n));
        }
    }

    /// Add the branches `at`'s block is control dependent on (within the
    /// region) and queue their operands.
    fn queue_control_deps(
        &mut self,
        at: InstRef,
        region: &HashSet<BlockId>,
        slice: &mut Slice,
        work: &mut Vec<(InstRef, Reg)>,
    ) {
        if !self.opts.control_deps {
            return;
        }
        let fid = at.func;
        let func = self.prog.func(fid);
        let cdep_blocks: Vec<BlockId> = {
            let fa = self.analyses.get(self.prog, fid);
            fa.cdeps[at.block.index()].clone()
        };
        for cb in cdep_blocks {
            if !region.contains(&cb) {
                continue;
            }
            if self.opts.speculative
                && self.profile.block_count(fid, cb) < self.opts.min_block_count
            {
                slice.pruned += 1;
                continue;
            }
            let idx = func.block(cb).insts.len() - 1;
            let bat = InstRef { func: fid, block: cb, idx };
            if bat == at {
                continue;
            }
            if slice.insts.insert(bat) {
                let mut uses = Vec::new();
                func.block(cb).insts[idx].op.uses_into(&mut uses);
                for u in uses {
                    work.push((bat, u));
                }
                // Branches have their own control deps.
                self.queue_control_deps(bat, region, slice, work);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, Operand, ProgramBuilder};
    use ssp_sim::{MachineConfig, Profile};

    /// Figure 3's loop, with an extra non-address computation that must
    /// NOT land in the slice.
    fn mcf_like() -> (Program, BlockId, InstRef) {
        let mut pb = ProgramBuilder::new();
        // arcs: each arc's tail pointer; make the loop actually run.
        for i in 0..64u64 {
            pb.data_word(0x1000 + 64 * i, 0x9000 + 64 * i);
            pb.data_word(0x9000 + 64 * i, i);
        }
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, k, t, u, v, sum, p) =
            (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
        f.at(e).movi(arc, 0x1000).movi(k, 0x1000 + 64 * 64).movi(sum, 0).br(body);
        let root_tag_idx = 2; // index of the delinquent load in `body`
        f.at(body)
            .mov(t, arc) // 0: A
            .ld(u, t, 0) // 1: B
            .ld(v, u, 0) // 2: C   <- delinquent
            .add(sum, sum, Operand::Reg(v)) // 3: not address-relevant
            .add(arc, t, 64) // 4: D
            .cmp(CmpKind::Lt, p, arc, Operand::Reg(k)) // 5: E
            .br_cond(p, body, exit); // 6
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let root = InstRef { func: prog.entry, block: body, idx: root_tag_idx };
        (prog, body, root)
    }

    fn run_profile(prog: &Program) -> Profile {
        ssp_sim::profile(prog, &MachineConfig::in_order())
    }

    #[test]
    fn slice_excludes_non_address_computation() {
        let (prog, body, root) = mcf_like();
        let profile = run_profile(&prog);
        let mut s = Slicer::new(&prog, &profile, SliceOptions::default());
        let slice = s.slice_in_region(root, &[body]).unwrap();
        let idxs: Vec<usize> =
            slice.insts.iter().filter(|r| r.block == body).map(|r| r.idx).collect();
        // A(0), B(1), C(2=root), D(4), E(5), branch(6) — but not sum(3).
        assert!(idxs.contains(&0));
        assert!(idxs.contains(&1));
        assert!(idxs.contains(&2));
        assert!(!idxs.contains(&3), "sum accumulation must be sliced away");
        assert!(idxs.contains(&4));
        assert!(idxs.contains(&5));
        assert!(idxs.contains(&6));
    }

    #[test]
    fn live_ins_are_region_inputs() {
        let (prog, body, root) = mcf_like();
        let profile = run_profile(&prog);
        let mut s = Slicer::new(&prog, &profile, SliceOptions::default());
        let slice = s.slice_in_region(root, &[body]).unwrap();
        // arc and k flow in from outside the loop.
        assert!(slice.live_ins.contains(&Reg(64)), "arc is a live-in");
        assert!(slice.live_ins.contains(&Reg(65)), "K is a live-in");
        assert!(!slice.live_ins.contains(&Reg(69)), "sum is not address-relevant");
        assert!(!slice.interprocedural());
    }

    #[test]
    fn value_slice_without_control_deps_is_smaller() {
        let (prog, body, root) = mcf_like();
        let profile = run_profile(&prog);
        let mut with = Slicer::new(&prog, &profile, SliceOptions::default());
        let full = with.slice_in_region(root, &[body]).unwrap();
        let mut without = Slicer::new(
            &prog,
            &profile,
            SliceOptions { control_deps: false, ..SliceOptions::default() },
        );
        let value_only = without.slice_in_region(root, &[body]).unwrap();
        assert!(value_only.size() < full.size());
        // Pure value slice: A, B, D (arc chain) + root.
        let idxs: Vec<usize> =
            value_only.insts.iter().filter(|r| r.block == body).map(|r| r.idx).collect();
        assert!(!idxs.contains(&5), "loop condition excluded from value slice");
    }

    #[test]
    fn speculative_slicing_prunes_cold_paths() {
        // Loop whose body has a cold error path redefining the pointer.
        let mut pb = ProgramBuilder::new();
        for i in 0..64u64 {
            pb.data_word(0x1000 + 64 * i, 0x9000 + 64 * i);
        }
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let cold = f.new_block();
        let join = f.new_block();
        let exit = f.new_block();
        let (ptr, i, u, p, zero) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68));
        f.at(e).movi(ptr, 0x1000).movi(i, 0).movi(zero, 0).br(body);
        f.at(body)
            .cmp(CmpKind::Eq, p, zero, 1) // never true
            .br_cond(p, cold, join);
        f.at(cold)
            .movi(ptr, 0x7777_0000) // cold redefinition of ptr
            .br(join);
        f.at(join)
            .ld(u, ptr, 0) // the delinquent load
            .add(ptr, ptr, 64)
            .add(i, i, 1)
            .cmp(CmpKind::Lt, p, i, 64)
            .br_cond(p, body, exit);
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let profile = run_profile(&prog);
        let root = InstRef { func: prog.entry, block: join, idx: 0 };
        let region = [body, cold, join];

        let mut spec = Slicer::new(&prog, &profile, SliceOptions::default());
        let spec_slice = spec.slice_in_region(root, &region).unwrap();
        let mut stat = Slicer::new(
            &prog,
            &profile,
            SliceOptions { speculative: false, ..SliceOptions::default() },
        );
        let stat_slice = stat.slice_in_region(root, &region).unwrap();

        assert!(spec_slice.pruned > 0, "cold def was pruned");
        let cold_def = InstRef { func: prog.entry, block: cold, idx: 0 };
        assert!(!spec_slice.insts.contains(&cold_def));
        assert!(stat_slice.insts.contains(&cold_def), "static slicing keeps it");
        assert!(spec_slice.size() < stat_slice.size());
    }

    #[test]
    fn interprocedural_descent_through_call() {
        // next = advance(cur); u = ld(next)  — advance returns ld(cur+8).
        let mut pb = ProgramBuilder::new();
        for i in 0..32u64 {
            pb.data_word(0x1000 + 64 * i + 8, 0x1000 + 64 * (i + 1));
        }
        let main_id = pb.declare();
        let adv_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        let body = m.new_block();
        let exit = m.new_block();
        let (cur, i, u, p) = (Reg(64), Reg(65), Reg(66), Reg(67));
        m.at(e).movi(cur, 0x1000).movi(i, 0).br(body);
        m.at(body)
            .mov(conv::arg(0), cur)
            .call(adv_id, 1)
            .mov(cur, conv::RV)
            .ld(u, cur, 0) // delinquent
            .add(i, i, 1)
            .cmp(CmpKind::Lt, p, i, 30)
            .br_cond(p, body, exit);
        m.at(exit).halt();
        let m = m.finish();
        let mut a = pb.define(adv_id, "advance");
        let e2 = a.entry_block();
        a.at(e2).ld(conv::RV, conv::arg(0), 8).ret();
        let a = a.finish();
        pb.install(m);
        pb.install(a);
        let prog = pb.finish(main_id);
        let profile = run_profile(&prog);
        let root = InstRef { func: main_id, block: body, idx: 3 };
        let mut s = Slicer::new(&prog, &profile, SliceOptions::default());
        let slice = s.slice_in_region(root, &[body]).unwrap();
        assert!(slice.interprocedural(), "slice crosses into advance()");
        assert_eq!(slice.callee_insts.len(), 1, "the callee's load");
        assert!(
            slice.insts.iter().any(|r| prog.inst(*r).op.is_call()),
            "the call site anchors the descent"
        );
        assert!(slice.live_ins.contains(&cur) || slice.live_ins.contains(&conv::arg(0)));
    }

    #[test]
    fn non_load_root_is_a_typed_error() {
        let (prog, body, _) = mcf_like();
        let profile = run_profile(&prog);
        let mut s = Slicer::new(&prog, &profile, SliceOptions::default());
        // idx 0 is `mov t, arc` — not a load.
        let root = InstRef { func: prog.entry, block: body, idx: 0 };
        let err = s.slice_in_region(root, &[body]).unwrap_err();
        assert_eq!(err, SliceError::RootNotLoad(root));
        assert!(err.to_string().contains("is not a load"));
    }
}
