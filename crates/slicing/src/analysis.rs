//! Cached per-function analysis bundles shared by the slicer, scheduler,
//! and trigger placer.

use ssp_ir::cfg::Cfg;
use ssp_ir::dataflow::ReachingDefs;
use ssp_ir::dom::{control_deps, DomTree};
use ssp_ir::loops::LoopForest;
use ssp_ir::{BlockId, FuncId, Program};
use std::collections::HashMap;

/// All the derived views of one function the post-pass tool needs.
#[derive(Debug)]
pub struct FuncAnalyses {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Post-dominator tree.
    pub pdom: DomTree,
    /// Per-block control dependences (which branch blocks decide whether
    /// each block runs).
    pub cdeps: Vec<Vec<BlockId>>,
    /// Natural loops.
    pub loops: LoopForest,
    /// Reaching definitions over physical registers.
    pub rd: ReachingDefs,
}

impl FuncAnalyses {
    /// Analyse function `fid` of `prog`.
    pub fn new(prog: &Program, fid: FuncId) -> Self {
        let func = prog.func(fid);
        let cfg = Cfg::new(func);
        let dom = DomTree::dominators(func, &cfg);
        let pdom = DomTree::post_dominators(func, &cfg);
        let cdeps = control_deps(func, &cfg);
        let loops = LoopForest::new(func, &cfg, &dom);
        let rd = ReachingDefs::new(fid, func, &cfg);
        FuncAnalyses { cfg, dom, pdom, cdeps, loops, rd }
    }
}

/// Lazy program-wide analysis cache.
#[derive(Debug, Default)]
pub struct Analyses {
    cache: HashMap<FuncId, FuncAnalyses>,
}

impl Analyses {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The analyses for `fid`, computing them on first use.
    pub fn get(&mut self, prog: &Program, fid: FuncId) -> &FuncAnalyses {
        self.cache.entry(fid).or_insert_with(|| FuncAnalyses::new(prog, fid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{CmpKind, ProgramBuilder, Reg};

    #[test]
    fn bundle_builds_for_looped_function() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.at(e).movi(Reg(1), 0).br(body);
        f.at(body).add(Reg(1), Reg(1), 1).cmp(CmpKind::Lt, Reg(2), Reg(1), 5).br_cond(
            Reg(2),
            body,
            exit,
        );
        f.at(exit).halt();
        let main = f.finish();
        let prog = pb.finish_with(main);
        let mut a = Analyses::new();
        let fa = a.get(&prog, prog.entry);
        assert_eq!(fa.loops.len(), 1);
        assert_eq!(fa.cfg.rpo().len(), 3);
        // Cache hit returns the same analysis.
        let again = a.get(&prog, prog.entry);
        assert_eq!(again.loops.len(), 1);
    }
}
