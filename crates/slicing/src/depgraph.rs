//! Instruction-level dependence graphs over a code region.
//!
//! The slice and its "annotated dependence edges between the nodes in the
//! slice form the dependence graph of the slice" (§3.2); the scheduler
//! partitions it into strongly connected components and list-schedules the
//! result. Edges carry latencies: "the latency of a memory operation is
//! determined by cache profiling, and the machine model provides latency
//! estimates for other instructions".

use crate::analysis::FuncAnalyses;
use ssp_ir::{BlockId, FuncId, InstRef, Op, Program, Reg};
use ssp_sim::{MachineConfig, Profile};
use std::collections::{HashMap, HashSet};

/// Kind of a dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Register flow dependence through `Reg`.
    Data(Reg),
    /// Control dependence on a branch.
    Control,
}

/// A dependence edge `from -> to`: `to` consumes what `from` produces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DepEdge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
    /// What kind of dependence.
    pub kind: DepKind,
    /// True when the value flows around a back edge (iteration i
    /// produces, iteration i+1 consumes).
    pub carried: bool,
    /// For carried edges: true when the flow stays inside a *nested*
    /// loop (it never passes the region header). Inner-carried
    /// dependences serialize iterations of the inner loop, not the
    /// chaining threads that each execute one region iteration — the
    /// scheduler drops them (the emitted slice is the straight-line
    /// speculative body of one region iteration).
    pub inner: bool,
    /// Latency of the producer, in cycles.
    pub latency: u64,
}

/// The dependence graph of the instructions in one region (a set of blocks
/// of one function, typically a loop body).
#[derive(Clone, Debug)]
pub struct RegionDepGraph {
    /// Nodes in program order (block RPO, then instruction index).
    pub nodes: Vec<InstRef>,
    /// Edges; `from`/`to` index into [`RegionDepGraph::nodes`].
    pub edges: Vec<DepEdge>,
    index: HashMap<InstRef, usize>,
}

/// Latency estimate for one operation: cache profile average for loads,
/// machine-model estimates otherwise (§3.2.1).
pub fn latency_of(op: &Op, tag: ssp_ir::InstTag, profile: &Profile, mc: &MachineConfig) -> u64 {
    match op {
        Op::Ld { .. } => match profile.loads.get(&tag) {
            Some(lp) if lp.accesses > 0 => mc.l1d.latency + lp.miss_cycles / lp.accesses,
            _ => mc.l1d.latency,
        },
        Op::Alu { kind: ssp_ir::AluKind::Mul, .. } => mc.mul_latency,
        Op::FAlu { .. } => mc.fp_latency,
        Op::LibAlloc { .. } | Op::LibLd { .. } | Op::LibSt { .. } | Op::LibFree { .. } => {
            mc.lib_latency
        }
        _ => mc.int_latency,
    }
}

/// Location-aware latency estimate: like [`latency_of`], but `Call`
/// instructions cost their profiled per-invocation dynamic instruction
/// count (a cheap proxy for cycles) — region heights through calls would
/// otherwise pretend callees are free.
pub fn latency_of_at(prog: &Program, at: InstRef, profile: &Profile, mc: &MachineConfig) -> u64 {
    let inst = prog.inst(at);
    if inst.op.is_call() {
        return profile.avg_call_cost(at).map_or(mc.int_latency, |c| (c as u64).clamp(1, 100_000));
    }
    latency_of(&inst.op, inst.tag, profile, mc)
}

impl RegionDepGraph {
    /// Build the dependence graph for the given `blocks` of function
    /// `fid`. Data edges come from reaching definitions restricted to the
    /// region; an edge is *carried* when the definition cannot reach the
    /// use without following a back edge of the region. Control edges
    /// connect each instruction to the in-region branches its block is
    /// control dependent on. Loop-carried anti and output dependences are
    /// not represented at all, matching §3.1's "our slicing tool also
    /// ignores loop-carried anti dependences and output dependences".
    pub fn build(
        prog: &Program,
        fid: FuncId,
        blocks: &[BlockId],
        fa: &FuncAnalyses,
        profile: &Profile,
        mc: &MachineConfig,
    ) -> Self {
        Self::build_with_header(prog, fid, blocks, None, fa, profile, mc)
    }

    /// [`RegionDepGraph::build`] with the region's loop header, enabling
    /// the inner-carried classification (carried flows that can reach
    /// their consumer without passing `header`).
    pub fn build_with_header(
        prog: &Program,
        fid: FuncId,
        blocks: &[BlockId],
        header: Option<BlockId>,
        fa: &FuncAnalyses,
        profile: &Profile,
        mc: &MachineConfig,
    ) -> Self {
        let func = prog.func(fid);
        let in_region: HashSet<BlockId> = blocks.iter().copied().collect();
        // Whether block `from` can reach block `to` inside the region
        // without entering `hdr` (i.e. along a nested loop's back edge).
        let reaches_without_header = |from: BlockId, to: BlockId, hdr: BlockId| -> bool {
            if to == hdr {
                return false;
            }
            let mut seen: HashSet<BlockId> = HashSet::new();
            let mut work: Vec<BlockId> = fa
                .cfg
                .succs(from)
                .iter()
                .copied()
                .filter(|b| in_region.contains(b) && *b != hdr)
                .collect();
            while let Some(b) = work.pop() {
                if b == to {
                    return true;
                }
                if !seen.insert(b) {
                    continue;
                }
                work.extend(
                    fa.cfg.succs(b).iter().copied().filter(|x| in_region.contains(x) && *x != hdr),
                );
            }
            false
        };
        let inner_of = |carried: bool, from: BlockId, to: BlockId| -> bool {
            carried && header.is_some_and(|h| reaches_without_header(from, to, h))
        };
        // Nodes in program order: region blocks sorted by RPO position.
        let mut ordered: Vec<BlockId> = blocks.to_vec();
        ordered.sort_by_key(|b| fa.cfg.rpo_pos(*b).unwrap_or(usize::MAX));
        let mut nodes = Vec::new();
        let mut index = HashMap::new();
        for &b in &ordered {
            for i in 0..func.block(b).insts.len() {
                let at = InstRef { func: fid, block: b, idx: i };
                index.insert(at, nodes.len());
                nodes.push(at);
            }
        }
        let rpo_pos = |b: BlockId| fa.cfg.rpo_pos(b).unwrap_or(usize::MAX);

        // Intra-region forward reachability between blocks without using
        // back edges: simple RPO-order comparison (an edge from a later
        // RPO position to an earlier one must take a back edge).
        let mut edges = Vec::new();
        let mut uses_buf = Vec::new();
        for (&at, &ni) in &index {
            let inst = &func.block(at.block).insts[at.idx];
            uses_buf.clear();
            inst.op.uses_into(&mut uses_buf);
            for &u in &uses_buf {
                if u.is_zero() {
                    continue;
                }
                for d in fa.rd.reaching(at.block, at.idx, u) {
                    let Some(&pi) = index.get(&d.at) else { continue };
                    let lat = latency_of_at(prog, d.at, profile, mc);
                    // Same block: carried iff the def comes at or after
                    // the use. Different blocks: carried iff the def's
                    // block is at or after the use's block in RPO.
                    let carried = if d.at.block == at.block {
                        d.at.idx >= at.idx
                    } else {
                        rpo_pos(d.at.block) >= rpo_pos(at.block)
                    };
                    edges.push(DepEdge {
                        from: pi,
                        to: ni,
                        kind: DepKind::Data(u),
                        carried,
                        inner: inner_of(carried, d.at.block, at.block),
                        latency: lat,
                    });
                }
            }
            // Control dependences: on the terminator of each controlling
            // block that lies inside the region.
            for &cb in &fa.cdeps[at.block.index()] {
                if !in_region.contains(&cb) {
                    continue;
                }
                let term_idx = func.block(cb).insts.len() - 1;
                let cat = InstRef { func: fid, block: cb, idx: term_idx };
                if cat == at {
                    continue;
                }
                let Some(&pi) = index.get(&cat) else { continue };
                let carried =
                    rpo_pos(cb) > rpo_pos(at.block) || (cb == at.block && term_idx >= at.idx);
                edges.push(DepEdge {
                    from: pi,
                    to: ni,
                    kind: DepKind::Control,
                    carried,
                    inner: inner_of(carried, cb, at.block),
                    latency: mc.int_latency,
                });
            }
        }
        edges.sort_by_key(|e| (e.from, e.to));
        edges.dedup_by_key(|e| (e.from, e.to, e.kind, e.carried));
        RegionDepGraph { nodes, edges, index }
    }

    /// The node index of `at`, if it is in the region.
    pub fn node_of(&self, at: InstRef) -> Option<usize> {
        self.index.get(&at).copied()
    }

    /// Producer edges into `n` (what `n` depends on).
    pub fn deps_of(&self, n: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.to == n)
    }

    /// Consumer edges out of `n`.
    pub fn users_of(&self, n: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.from == n)
    }

    /// Drop inner-carried edges: the view the chaining/basic schedulers
    /// use, where nested-loop serialization is intra-link work.
    pub fn without_inner_carried(&self) -> RegionDepGraph {
        let edges = self.edges.iter().filter(|e| !e.inner).copied().collect();
        RegionDepGraph { nodes: self.nodes.clone(), edges, index: self.index.clone() }
    }

    /// The subgraph induced by a set of instructions (e.g. a slice):
    /// nodes keep their relative program order; edges between retained
    /// nodes survive.
    pub fn induced(&self, keep: &HashSet<InstRef>) -> RegionDepGraph {
        let mut nodes = Vec::new();
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for (i, at) in self.nodes.iter().enumerate() {
            if keep.contains(at) {
                remap.insert(i, nodes.len());
                nodes.push(*at);
            }
        }
        let edges = self
            .edges
            .iter()
            .filter_map(|e| {
                let (&f, &t) = (remap.get(&e.from)?, remap.get(&e.to)?);
                Some(DepEdge { from: f, to: t, ..*e })
            })
            .collect();
        let index = nodes.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        RegionDepGraph { nodes, edges, index }
    }

    /// Rebuild the graph with nodes in a new order (`new_order[i]` is the
    /// old index of the node now at position `i`), re-deriving every
    /// edge's `carried` flag from the new positions: a dependence whose
    /// producer now sits at or after its consumer must flow around the
    /// back edge. Loop rotation (§3.2.1.1) is exactly such a reordering.
    ///
    /// # Panics
    ///
    /// Panics if `new_order` is not a permutation of `0..nodes.len()`.
    pub fn reordered(&self, new_order: &[usize]) -> RegionDepGraph {
        assert_eq!(new_order.len(), self.nodes.len(), "order must cover all nodes");
        let mut pos_of_old = vec![usize::MAX; self.nodes.len()];
        for (new_pos, &old) in new_order.iter().enumerate() {
            assert!(pos_of_old[old] == usize::MAX, "duplicate node in order");
            pos_of_old[old] = new_pos;
        }
        let nodes: Vec<InstRef> = new_order.iter().map(|&o| self.nodes[o]).collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                let from = pos_of_old[e.from];
                let to = pos_of_old[e.to];
                DepEdge { from, to, carried: from >= to, ..*e }
            })
            .collect();
        let index = nodes.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        RegionDepGraph { nodes, edges, index }
    }

    /// Drop every edge in `remove` (matched by `(from, to)` pairs in
    /// current indices). Condition prediction (§3.2.1.1) "breaks the
    /// dependences leading to the spawn condition" this way.
    pub fn without_edges(&self, remove: &HashSet<(usize, usize)>) -> RegionDepGraph {
        let edges =
            self.edges.iter().filter(|e| !remove.contains(&(e.from, e.to))).copied().collect();
        RegionDepGraph { nodes: self.nodes.clone(), edges, index: self.index.clone() }
    }

    /// Sum of all node latencies divided by the critical path length: the
    /// *available ILP* metric of §3.2.1.2.2 (Cooper et al.). Values near
    /// 1.0 mean the code is one long dependence chain — the regime where
    /// height-based list scheduling is near optimal.
    pub fn available_ilp(&self, profile: &Profile, prog: &Program, mc: &MachineConfig) -> f64 {
        let total: u64 = self.nodes.iter().map(|&at| latency_of_at(prog, at, profile, mc)).sum();
        let cp = self.critical_path(profile, prog, mc);
        if cp == 0 {
            1.0
        } else {
            total as f64 / cp as f64
        }
    }

    /// Longest latency path (over non-carried edges) from any region
    /// entry to the *input* of node `n` — how long the main thread takes
    /// to reach `n` after entering the region. Zero for nodes with no
    /// in-region producers (e.g. a load at the region top).
    pub fn depth_to(&self, n: usize, profile: &Profile, prog: &Program, mc: &MachineConfig) -> u64 {
        let mut depth = vec![0u64; self.nodes.len()];
        // Non-carried edges point forward in node order: forward scan.
        for i in 0..self.nodes.len() {
            for e in self.edges.iter().filter(|e| e.to == i && !e.carried) {
                let plat = latency_of_at(prog, self.nodes[e.from], profile, mc);
                depth[i] = depth[i].max(depth[e.from] + plat);
            }
        }
        depth.get(n).copied().unwrap_or(0)
    }

    /// Longest path through the acyclic (non-carried) edges, by latency.
    pub fn critical_path(&self, profile: &Profile, prog: &Program, mc: &MachineConfig) -> u64 {
        let n = self.nodes.len();
        let mut memo: Vec<Option<u64>> = vec![None; n];
        // Nodes are in program order, and non-carried edges always point
        // forward in that order, so a reverse scan is a topological order.
        let mut best = 0;
        for i in (0..n).rev() {
            let own = latency_of_at(prog, self.nodes[i], profile, mc);
            let succ_max = self
                .edges
                .iter()
                .filter(|e| e.from == i && !e.carried)
                .filter_map(|e| memo[e.to])
                .max()
                .unwrap_or(0);
            memo[i] = Some(own + succ_max);
            best = best.max(own + succ_max);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyses;
    use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};
    use ssp_sim::MachineConfig;

    /// The Figure 3 loop: A: t=arc; B: u=ld(t); C: ld(u); D: arc=t+64;
    /// E: while (arc<K).
    fn mcf_like() -> (ssp_ir::Program, BlockId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let body = f.new_block();
        let exit = f.new_block();
        let (arc, k, t, u, v, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69));
        f.at(e).movi(arc, 0x1000).movi(k, 0x5000).br(body);
        f.at(body)
            .mov(t, arc) // A
            .ld(u, t, 0) // B
            .ld(v, u, 0) // C
            .add(arc, t, 64) // D
            .cmp(CmpKind::Lt, p, arc, Operand::Reg(k)) // E (cmp)
            .br_cond(p, body, exit); // E (branch)
        f.at(exit).halt();
        let main = f.finish();
        (pb.finish_with(main), body)
    }

    fn graph_for(prog: &ssp_ir::Program, body: BlockId) -> RegionDepGraph {
        let mut an = Analyses::new();
        let fa = an.get(prog, prog.entry);
        let profile = Profile::default();
        RegionDepGraph::build(prog, prog.entry, &[body], fa, &profile, &MachineConfig::in_order())
    }

    #[test]
    fn figure3_dependences() {
        let (prog, body) = mcf_like();
        let g = graph_for(&prog, body);
        assert_eq!(g.nodes.len(), 6);
        let at = |idx: usize| InstRef { func: prog.entry, block: body, idx };
        let n = |idx: usize| g.node_of(at(idx)).unwrap();
        let has = |from: usize, to: usize, carried: bool| {
            g.edges.iter().any(|e| e.from == n(from) && e.to == n(to) && e.carried == carried)
        };
        // A -> B (t), intra.
        assert!(has(0, 1, false));
        // B -> C (u), intra.
        assert!(has(1, 2, false));
        // A -> D (t), intra; D -> A (arc), carried.
        assert!(has(0, 3, false));
        assert!(has(3, 0, true));
        // D -> E(cmp), intra; cmp -> branch intra.
        assert!(has(3, 4, false));
        assert!(has(4, 5, false));
        // No false loop-carried dependences from B or C to anything.
        assert!(!g.edges.iter().any(|e| e.from == n(2)), "C has no users");
    }

    #[test]
    fn control_dependence_on_loop_branch_is_carried() {
        let (prog, body) = mcf_like();
        let g = graph_for(&prog, body);
        let at = |idx: usize| InstRef { func: prog.entry, block: body, idx };
        let n = |idx: usize| g.node_of(at(idx)).unwrap();
        // Every instruction in the body is control dependent on the
        // body's own branch (carried: it decides the *next* iteration).
        let branch = n(5);
        for i in 0..5 {
            assert!(
                g.edges.iter().any(|e| e.from == branch
                    && e.to == n(i)
                    && e.kind == DepKind::Control
                    && e.carried),
                "instruction {i} control-depends on the loop branch"
            );
        }
    }

    #[test]
    fn induced_subgraph_keeps_slice_edges() {
        let (prog, body) = mcf_like();
        let g = graph_for(&prog, body);
        let at = |idx: usize| InstRef { func: prog.entry, block: body, idx };
        // Slice {A, B, D}: drop C and E.
        let keep: HashSet<InstRef> = [at(0), at(1), at(3)].into_iter().collect();
        let sub = g.induced(&keep);
        assert_eq!(sub.nodes.len(), 3);
        let n = |idx: usize| sub.node_of(at(idx)).unwrap();
        assert!(sub.edges.iter().any(|e| e.from == n(0) && e.to == n(1)));
        assert!(sub.edges.iter().any(|e| e.from == n(3) && e.to == n(0) && e.carried));
        assert!(sub.node_of(at(2)).is_none());
    }

    #[test]
    fn pointer_chase_has_low_available_ilp() {
        let (prog, body) = mcf_like();
        let g = graph_for(&prog, body);
        let profile = Profile::default();
        let mc = MachineConfig::in_order();
        let ilp = g.available_ilp(&profile, &prog, &mc);
        assert!(ilp >= 1.0);
        assert!(ilp < 2.5, "dependence chains dominate: ilp = {ilp}");
    }

    #[test]
    fn load_latency_comes_from_profile() {
        let (prog, body) = mcf_like();
        let at = InstRef { func: prog.entry, block: body, idx: 1 };
        let tag = prog.inst(at).tag;
        let mut profile = Profile::default();
        profile.loads.insert(
            tag,
            ssp_sim::LoadProfile {
                accesses: 10,
                misses: 10,
                miss_cycles: 2300,
                ..Default::default()
            },
        );
        let mc = MachineConfig::in_order();
        let lat = latency_of(&prog.inst(at).op, tag, &profile, &mc);
        assert_eq!(lat, mc.l1d.latency + 230);
    }
}
