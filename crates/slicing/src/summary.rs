//! Slice summaries for interprocedural slicing (§3.1, §3.1.1).
//!
//! A summary answers: "which instructions of callee `f` (and its callees)
//! compute the value of register `r` at `f`'s returns, and which entry
//! registers does that computation need?" Summaries are cached to
//! "exploit redundancy in slice computation"; recursive call chains are
//! resolved with the iterative fixed point of §3.1.1 — an in-progress
//! summary is approximated by its current value, dependents are recorded,
//! and recomputation iterates until the worklist drains. Termination is
//! guaranteed because summaries only grow and the number of static
//! instructions is finite.

use crate::analysis::Analyses;
use ssp_ir::reg::conv;
use ssp_ir::{FuncId, InstRef, Op, Program, Reg};
use std::collections::{BTreeSet, HashMap, HashSet};

/// What a callee contributes to a slice.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Summary {
    /// Instructions (in the callee and transitively its callees) that
    /// compute the requested value.
    pub insts: BTreeSet<InstRef>,
    /// Entry registers (arguments) the computation needs.
    pub needs: BTreeSet<Reg>,
    /// True when the value's computation could not be fully captured
    /// (e.g. an unresolved indirect call feeds it); using such a summary
    /// is a speculation.
    pub impure: bool,
}

/// Summary computer with caching and the recursion fixed point.
#[derive(Debug, Default)]
pub struct Summaries {
    cache: HashMap<(FuncId, Reg), Summary>,
    in_progress: HashSet<(FuncId, Reg)>,
}

impl Summaries {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The summary for "value of `reg` at returns of `f`", computing (and
    /// fixing) it as needed.
    pub fn get(&mut self, prog: &Program, analyses: &mut Analyses, f: FuncId, reg: Reg) -> Summary {
        // Iterate to a fixed point: recursive references see the previous
        // approximation; repeat until nothing changes.
        loop {
            let before = self.cache.get(&(f, reg)).cloned();
            let computed = self.compute(prog, analyses, f, reg);
            let changed = before.as_ref() != Some(&computed);
            self.cache.insert((f, reg), computed.clone());
            if !changed {
                return computed;
            }
        }
    }

    fn compute(&mut self, prog: &Program, analyses: &mut Analyses, f: FuncId, reg: Reg) -> Summary {
        if !self.in_progress.insert((f, reg)) {
            // Recurrence: use the current approximation (possibly empty).
            return self.cache.get(&(f, reg)).cloned().unwrap_or_default();
        }
        let mut out = Summary::default();
        let func = prog.func(f);
        // Seed: the requested register at every return site.
        let mut work: Vec<(InstRef, Reg)> = Vec::new();
        let mut seen: HashSet<(InstRef, Reg)> = HashSet::new();
        {
            let fa = analyses.get(prog, f);
            for &b in fa.cfg.rpo() {
                let n = func.block(b).insts.len();
                if matches!(func.block(b).terminator(), Op::Ret) {
                    let at = InstRef { func: f, block: b, idx: n - 1 };
                    work.push((at, reg));
                }
            }
        }
        while let Some((at, r)) = work.pop() {
            if !seen.insert((at, r)) {
                continue;
            }
            let defs = {
                let fa = analyses.get(prog, f);
                fa.rd.reaching(at.block, at.idx, r)
            };
            if defs.is_empty() {
                // Reaches the function entry: an argument (or caller
                // state) is needed.
                out.needs.insert(r);
                continue;
            }
            let mut any_entry = true;
            for d in &defs {
                any_entry = false;
                let dinst = prog.inst(d.at).op.clone();
                match dinst {
                    Op::Call { callee, .. } if r == conv::RV => {
                        // Value produced by a nested call: splice in its
                        // summary and resolve its needs before the call.
                        let sub = self.get(prog, analyses, callee, conv::RV);
                        out.impure |= sub.impure;
                        out.insts.extend(sub.insts.iter().copied());
                        out.insts.insert(d.at);
                        for n in sub.needs {
                            work.push((d.at, n));
                        }
                    }
                    Op::Call { .. } | Op::CallInd { .. } => {
                        // A clobbered scratch value (or an indirect call's
                        // result): cannot capture — speculative.
                        out.impure = true;
                    }
                    _ => {
                        out.insts.insert(d.at);
                        let mut uses = Vec::new();
                        dinst.uses_into(&mut uses);
                        for u in uses {
                            if !u.is_zero() {
                                work.push((d.at, u));
                            }
                        }
                    }
                }
            }
            if any_entry {
                out.needs.insert(r);
            }
        }
        self.in_progress.remove(&(f, reg));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_ir::{AluKind, CmpKind, Operand, ProgramBuilder};

    /// helper(x) { return x + 8 }   — pure, needs arg0.
    #[test]
    fn simple_summary() {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let h_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        m.at(e).movi(conv::arg(0), 5).call(h_id, 1).halt();
        let m = m.finish();
        let mut h = pb.define(h_id, "helper");
        let e2 = h.entry_block();
        h.at(e2).alu(AluKind::Add, conv::RV, conv::arg(0), Operand::Imm(8)).ret();
        let h = h.finish();
        pb.install(m);
        pb.install(h);
        let prog = pb.finish(main_id);
        let mut an = Analyses::new();
        let mut s = Summaries::new();
        let sum = s.get(&prog, &mut an, h_id, conv::RV);
        assert!(!sum.impure);
        assert_eq!(sum.insts.len(), 1, "just the add");
        assert_eq!(sum.needs.iter().copied().collect::<Vec<_>>(), vec![conv::arg(0)]);
    }

    /// Recursive: f(x) { if (x < 2) return x; return f(ld(x)) }.
    #[test]
    fn recursive_summary_reaches_fixed_point() {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let f_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        m.at(e).movi(conv::arg(0), 0x1000).call(f_id, 1).halt();
        let m = m.finish();

        let mut f = pb.define(f_id, "walk");
        let e2 = f.entry_block();
        let base = f.new_block();
        let rec = f.new_block();
        let p = Reg(20);
        f.at(e2).cmp(CmpKind::Lt, p, conv::arg(0), 2).br_cond(p, base, rec);
        f.at(base).mov(conv::RV, conv::arg(0)).ret();
        f.at(rec).ld(conv::arg(0), conv::arg(0), 0).call(f_id, 1).ret();
        let f = f.finish();
        pb.install(m);
        pb.install(f);
        let prog = pb.finish(main_id);
        let mut an = Analyses::new();
        let mut s = Summaries::new();
        let sum = s.get(&prog, &mut an, f_id, conv::RV);
        assert!(!sum.impure);
        assert!(sum.needs.contains(&conv::arg(0)));
        // Must include the mov, the recursive load, and the recursive call.
        assert!(sum.insts.len() >= 3, "got {:?}", sum.insts);
        // Fixed point: asking again returns the identical summary.
        let again = s.get(&prog, &mut an, f_id, conv::RV);
        assert_eq!(sum, again);
    }

    /// Indirect call feeding the result marks the summary impure.
    #[test]
    fn indirect_call_is_impure() {
        let mut pb = ProgramBuilder::new();
        let main_id = pb.declare();
        let f_id = pb.declare();
        let t_id = pb.declare();
        let mut m = pb.define(main_id, "main");
        let e = m.entry_block();
        m.at(e).call(f_id, 0).halt();
        let m = m.finish();
        let mut f = pb.define(f_id, "dispatch");
        let e2 = f.entry_block();
        f.at(e2).movi(Reg(20), t_id.as_value() as i64).call_ind(Reg(20), 0).ret();
        let f = f.finish();
        let mut t = pb.define(t_id, "target");
        let e3 = t.entry_block();
        t.at(e3).movi(conv::RV, 9).ret();
        let t = t.finish();
        pb.install(m);
        pb.install(f);
        pb.install(t);
        let prog = pb.finish(main_id);
        let mut an = Analyses::new();
        let mut s = Summaries::new();
        let sum = s.get(&prog, &mut an, f_id, conv::RV);
        assert!(sum.impure, "rv comes through an unresolved indirect call");
    }
}
