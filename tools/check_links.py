#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans the documents listed in DOCS for markdown links `[text](target)`,
ignores absolute URLs (http/https/mailto) and pure in-page anchors, and
checks that every relative target (with any #anchor stripped) exists on
disk relative to the linking file. Exits nonzero listing every dead
link. Run from the repository root: `python3 tools/check_links.py`.
"""

import os
import re
import sys

DOCS = [
    "README.md",
    "ARCHITECTURE.md",
    "EXPERIMENTS.md",
    "docs/ENGINE.md",
    "docs/SERVE.md",
    "docs/TUNING.md",
]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def main() -> int:
    dead = []
    for doc in DOCS:
        if not os.path.exists(doc):
            dead.append((doc, "<the document itself is missing>"))
            continue
        base = os.path.dirname(doc)
        with open(doc, encoding="utf-8") as f:
            text = f.read()
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not os.path.exists(os.path.join(base, path)):
                dead.append((doc, target))
    for doc, target in dead:
        print(f"dead link in {doc}: {target}", file=sys.stderr)
    if dead:
        return 1
    print(f"checked {len(DOCS)} documents, no dead relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
