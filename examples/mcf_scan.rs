//! Domain example: the full mcf reduced-cost scan benchmark through the
//! whole pipeline, on both machine models — the paper's Figure 3 loop at
//! benchmark scale.
//!
//! ```sh
//! cargo run --release --example mcf_scan
//! ```

use ssp_core::{simulate, MachineConfig, PostPassTool};

fn main() {
    let w = ssp_workloads::mcf::build(7);
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();

    let tool = PostPassTool::new(io.clone());
    let adapted = tool.run(&w.program).expect("adaptation succeeds");
    let c = adapted.characteristics(w.name);
    println!("== {} ==", c.name);
    println!(
        "slices {} (interprocedural {}), avg size {:.1}, avg live-ins {:.1}",
        c.slices, c.interprocedural, c.average_size, c.average_live_ins
    );

    for (label, machine) in [("in-order", &io), ("out-of-order", &ooo)] {
        let base = simulate(&w.program, machine);
        let ssp = simulate(&adapted.program, machine);
        println!(
            "{label:<13} base {:>9} cycles | +SSP {:>9} cycles | speedup {:.2}x | {} spec threads",
            base.cycles,
            ssp.cycles,
            base.cycles as f64 / ssp.cycles as f64,
            ssp.threads_spawned,
        );
    }

    // Where do the delinquent loads hit after SSP?
    let base = simulate(&w.program, &io);
    let ssp = simulate(&adapted.program, &io);
    let before = base.load_stats_for(&adapted.report.delinquent);
    let after = ssp.load_stats_for(&adapted.report.delinquent);
    println!("delinquent loads, in-order model:");
    println!(
        "  before SSP: {:5.1}% L1, {:5.1}% L2(+{:4.1}% partial), {:5.1}% mem(+{:4.1}%)",
        pct(before.l1, before.accesses),
        pct(before.l2, before.accesses),
        pct(before.l2_partial, before.accesses),
        pct(before.mem, before.accesses),
        pct(before.mem_partial, before.accesses),
    );
    println!(
        "  after  SSP: {:5.1}% L1, {:5.1}% L2(+{:4.1}% partial), {:5.1}% mem(+{:4.1}%)",
        pct(after.l1, after.accesses),
        pct(after.l2, after.accesses),
        pct(after.l2_partial, after.accesses),
        pct(after.mem, after.accesses),
        pct(after.mem_partial, after.accesses),
    );
}

fn pct(x: u64, total: u64) -> f64 {
    x as f64 / total.max(1) as f64 * 100.0
}
