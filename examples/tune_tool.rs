//! Domain example: tuning and ablating the post-pass tool on the
//! breadth-first tree traversal — toggling condition prediction, forcing
//! the precomputation model, and sweeping the chain budget.
//!
//! ```sh
//! cargo run --release --example tune_tool
//! ```

use ssp_core::{simulate, AdaptOptions, MachineConfig, PostPassTool, ScheduleOptions, SpModel};

fn run_with(w: &ssp_workloads::Workload, machine: &MachineConfig, opts: AdaptOptions) -> f64 {
    let tool = PostPassTool::new(machine.clone()).with_options(opts);
    let adapted = tool.run(&w.program).expect("adaptation succeeds");
    let base = simulate(&w.program, machine);
    let ssp = simulate(&adapted.program, machine);
    base.cycles as f64 / ssp.cycles as f64
}

fn main() {
    let w = ssp_workloads::treeadd::build_bf(7);
    let machine = MachineConfig::in_order();

    let default = AdaptOptions::default();
    println!("treeadd.bf on the in-order model:");
    println!("  default tool              : {:.2}x", run_with(&w, &machine, default.clone()));

    let mut no_pred = default.clone();
    no_pred.select.sched = ScheduleOptions { condition_prediction: false, ..Default::default() };
    println!(
        "  without condition predict : {:.2}x   (the queue-growth condition keeps the loads critical)",
        run_with(&w, &machine, no_pred)
    );

    let mut basic = default.clone();
    basic.select.force_model = Some(SpModel::Basic);
    basic.select.min_slack = i64::MIN;
    println!(
        "  forced basic SP           : {:.2}x   (one sequential prefetch thread)",
        run_with(&w, &machine, basic)
    );

    for budget in [4, 16, 64, 512] {
        let mut b = default.clone();
        b.emit.chain_budget = budget;
        println!("  chain budget {budget:>4}         : {:.2}x", run_with(&w, &machine, b));
    }
}
