//! Quickstart: build a pointer-chasing program, run the post-pass tool,
//! and measure the speedup on the in-order research Itanium model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ssp_core::{simulate, MachineConfig, PostPassTool};
use ssp_ir::{CmpKind, Operand, ProgramBuilder, Reg};

fn main() {
    // A miniature mcf: an arc array whose `tail` pointers scatter across
    // a heap; the dependent `potential` load misses constantly.
    let n: u64 = 600;
    let (arcs, nodes) = (0x0100_0000u64, 0x0800_0000u64);
    let mut pb = ProgramBuilder::new();
    for i in 0..n {
        let perm = (i * 7919) % n;
        pb.data_word(arcs + 64 * i, nodes + 64 * perm);
        pb.data_word(nodes + 64 * perm, perm * 3);
    }
    let mut f = pb.function("main");
    let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, arcs as i64).movi(k, (arcs + 64 * n) as i64).movi(sum, 0).br(body);
    f.at(body)
        .mov(t, arc)
        .ld(u, t, 0) // u = arc->tail
        .ld(v, u, 0) // v = u->potential   <- the delinquent load
        .add(sum, sum, Operand::Reg(v))
        .add(arc, arc, 64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let main_fn = f.finish();
    let program = pb.finish_with(main_fn);

    // The post-pass tool: profile, slice, schedule, place triggers, emit.
    let machine = MachineConfig::in_order();
    let tool = PostPassTool::new(machine.clone());
    let adapted = tool.run(&program).expect("adaptation succeeds");

    println!("delinquent loads found : {}", adapted.report.delinquent.len());
    println!("p-slices emitted       : {}", adapted.report.slice_count());
    for s in &adapted.report.slices {
        println!(
            "  - {:?} slice, {} instructions, live-ins {:?}, trigger at {}:{:?}",
            s.model, s.slice_len, s.live_ins, s.trigger.block, s.trigger.after
        );
    }

    let base = simulate(&program, &machine);
    let ssp = simulate(&adapted.program, &machine);
    println!("baseline cycles        : {}", base.cycles);
    println!("SSP-enhanced cycles    : {}", ssp.cycles);
    println!("speculative threads    : {}", ssp.threads_spawned);
    println!("speedup                : {:.2}x", base.cycles as f64 / ssp.cycles as f64);
}
