//! Workspace integration tests: the whole pipeline over the full
//! benchmark suite — structural validity, semantics preservation,
//! determinism, and no-regression guarantees.

use ssp_core::{simulate, MachineConfig, MemoryMode, PostPassTool};

const SEED: u64 = 2002;

#[test]
fn every_benchmark_adapts_and_verifies() {
    let tool = PostPassTool::new(MachineConfig::in_order());
    for w in ssp_workloads::suite(SEED) {
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        ssp_ir::verify::verify(&adapted.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        ssp_ir::verify::verify_speculative(&adapted.program)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        // Original tags survive adaptation (profiles stay valid).
        let orig: std::collections::HashSet<_> = w.program.tag_index().keys().copied().collect();
        let new: std::collections::HashSet<_> =
            adapted.program.tag_index().keys().copied().collect();
        assert!(orig.is_subset(&new), "{}: tags preserved", w.name);
    }
}

#[test]
fn ssp_never_hurts_meaningfully_in_order() {
    let mc = MachineConfig::in_order();
    let tool = PostPassTool::new(mc.clone());
    for w in ssp_workloads::suite(SEED) {
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let base = simulate(&w.program, &mc);
        let ssp = simulate(&adapted.program, &mc);
        assert!(base.halted && ssp.halted, "{} halts", w.name);
        assert!(
            ssp.cycles as f64 <= base.cycles as f64 * 1.05,
            "{}: SSP must not slow the in-order model by >5%: base={} ssp={}",
            w.name,
            base.cycles,
            ssp.cycles
        );
    }
}

#[test]
fn suite_achieves_meaningful_mean_speedup() {
    // The paper's headline: large mean in-order speedup across the seven
    // pointer-intensive benchmarks (87% there; we assert a robust floor).
    let mc = MachineConfig::in_order();
    let tool = PostPassTool::new(mc.clone());
    let mut speedups = Vec::new();
    for w in ssp_workloads::suite(SEED) {
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let base = simulate(&w.program, &mc);
        let ssp = simulate(&adapted.program, &mc);
        speedups.push(base.cycles as f64 / ssp.cycles as f64);
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(mean > 1.35, "mean in-order speedup {mean:.2} must exceed 1.35x");
    // And at least three benchmarks individually gain >50%.
    let big = speedups.iter().filter(|&&s| s > 1.5).count();
    assert!(big >= 3, "at least 3 big winners, got {big} ({speedups:?})");
}

#[test]
fn adaptation_preserves_main_thread_semantics() {
    // Under perfect memory, per-tag load execution counts of the original
    // instructions must be identical before/after adaptation: SSP may
    // only add work, never change the main thread's path.
    let mc = MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectAll);
    let tool = PostPassTool::new(MachineConfig::in_order());
    for w in ssp_workloads::suite(SEED) {
        let adapted = tool.run(&w.program).expect("adaptation succeeds");
        let base = simulate(&w.program, &mc);
        let ssp = simulate(&adapted.program, &mc);
        for (tag, s) in &base.loads {
            let got = ssp.loads.get(tag).map(|x| x.accesses).unwrap_or(0);
            assert_eq!(s.accesses, got, "{}: load {tag} count", w.name);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let mc = MachineConfig::in_order();
    let tool = PostPassTool::new(mc.clone());
    let w = ssp_workloads::mcf::build(SEED);
    let a1 = tool.run(&w.program).expect("adaptation succeeds");
    let a2 = tool.run(&w.program).expect("adaptation succeeds");
    assert_eq!(a1.program, a2.program, "adaptation is deterministic");
    let r1 = simulate(&a1.program, &mc);
    let r2 = simulate(&a1.program, &mc);
    assert_eq!(r1.cycles, r2.cycles, "simulation is deterministic");
    assert_eq!(r1.threads_spawned, r2.threads_spawned);
}

#[test]
fn ooo_model_beats_in_order_on_all_baselines() {
    let io = MachineConfig::in_order();
    let ooo = MachineConfig::out_of_order();
    for w in ssp_workloads::suite(SEED) {
        let rio = simulate(&w.program, &io);
        let rooo = simulate(&w.program, &ooo);
        assert!(
            rooo.cycles < rio.cycles,
            "{}: OOO must beat in-order: {} vs {}",
            w.name,
            rooo.cycles,
            rio.cycles
        );
    }
}

#[test]
fn delinquent_loads_cover_most_miss_cycles() {
    // Figure 2's premise: a small set of static loads causes >=90% of
    // miss cycles.
    let mc = MachineConfig::in_order();
    for w in ssp_workloads::suite(SEED) {
        let profile = ssp_core::profile(&w.program, &mc);
        let delinquent = profile.delinquent_loads(0.9);
        assert!(!delinquent.is_empty(), "{} has delinquent loads", w.name);
        assert!(
            delinquent.len() <= 8,
            "{}: delinquency is concentrated ({} loads)",
            w.name,
            delinquent.len()
        );
        let covered: u64 =
            delinquent.iter().filter_map(|t| profile.loads.get(t)).map(|l| l.miss_cycles).sum();
        let total: u64 = profile.loads.values().map(|l| l.miss_cycles).sum();
        assert!(covered * 10 >= total * 9, "{}: >=90% coverage", w.name);
    }
}
