//! Tier-1 differential-oracle regression tests.
//!
//! Replays the checked-in corpus through the full differential oracle
//! (every entry must pass with zero violations) and pins the
//! determinism contract the `fuzz_oracle` binary advertises: the batch
//! summary JSON is byte-identical no matter how many workers ran it.

use proptest::test_runner::TestRng;
use ssp_bench::parallel;
use ssp_fuzz::oracle::summarize;
use ssp_fuzz::{run_case, CaseOutcome, CaseSpec, OracleConfig};

const CORPUS: &str = include_str!("corpus/adaptation_oracle.corpus");

#[test]
fn corpus_replays_clean() {
    let specs = ssp_fuzz::corpus::parse(CORPUS).expect("corpus parses");
    assert!(specs.len() >= 8, "seed corpus present");
    let ocfg = OracleConfig::default();
    for s in &specs {
        let r = run_case(s, &ocfg);
        assert_eq!(r.outcome, CaseOutcome::Pass, "{s}: {:?}", r.outcome);
    }
}

#[test]
fn summary_is_byte_identical_across_worker_counts() {
    let mut rng = TestRng::from_seed(2002);
    let specs: Vec<CaseSpec> = (0..12)
        .map(|_| {
            let mut s = CaseSpec::random(&mut rng);
            s.chase = s.chase.min(48); // keep the tier-1 run quick
            s
        })
        .collect();
    let ocfg = OracleConfig::default();
    let serial = parallel::map_indexed(&specs, 1, |_, s| run_case(s, &ocfg));
    let wide = parallel::map_indexed(&specs, 8, |_, s| run_case(s, &ocfg));
    let (a, b) = (summarize(&serial).to_json(), summarize(&wide).to_json());
    assert_eq!(a, b, "summary JSON depends on worker count");
    assert!(a.contains("\"cases\": 12"));
}
