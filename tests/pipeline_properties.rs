//! Property-based tests over randomly generated pointer-chase programs:
//! whatever the layout, the post-pass tool must produce a verified binary
//! that preserves main-thread semantics and never livelocks.

use proptest::prelude::*;
use ssp_core::{
    lint_binary, simulate, AdaptOptions, MachineConfig, MemoryMode, PostPassTool, SpModel,
};
use ssp_ir::{CmpKind, Operand, Program, ProgramBuilder, Reg};

/// A randomized two-level pointer chase: `n` arcs with stride `stride`,
/// tails permuted by `mult`, node values at scattered addresses.
fn chase(n: u64, stride: u64, mult: u64, extra_alu: usize) -> Program {
    let arcs = 0x0100_0000u64;
    let nodes = 0x0800_0000u64;
    let mut pb = ProgramBuilder::new();
    for i in 0..n {
        let perm = (i * mult) % n;
        pb.data_word(arcs + stride * i, nodes + 64 * perm);
        pb.data_word(nodes + 64 * perm, perm + 1);
    }
    let mut f = pb.function("main");
    let (e, body, exit) = (f.entry_block(), f.new_block(), f.new_block());
    let (arc, k, t, u, v, sum, p) = (Reg(64), Reg(65), Reg(66), Reg(67), Reg(68), Reg(69), Reg(70));
    f.at(e).movi(arc, arcs as i64).movi(k, (arcs + stride * n) as i64).movi(sum, 0).br(body);
    let mut c = f.at(body).mov(t, arc).ld(u, t, 0).ld(v, u, 0);
    for j in 0..extra_alu {
        c = c.add(Reg(80 + j as u16), v, Operand::Imm(j as i64));
    }
    c.add(sum, sum, Operand::Reg(v))
        .add(arc, arc, stride as i64)
        .cmp(CmpKind::Lt, p, arc, Operand::Reg(k))
        .br_cond(p, body, exit);
    f.at(exit).halt();
    let main = f.finish();
    pb.finish_with(main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adapted_binaries_verify_and_halt(
        n in 32u64..200,
        stride_pow in 3u32..7, // 8..64 bytes
        mult in prop::sample::select(vec![7919u64, 104729, 31, 1, 3]),
        extra_alu in 0usize..6,
    ) {
        let stride = 1u64 << stride_pow;
        let prog = chase(n, stride, mult, extra_alu);
        prop_assert!(ssp_ir::verify::verify(&prog).is_ok());

        let mc = MachineConfig::in_order();
        let tool = PostPassTool::new(mc.clone());
        let adapted = tool.run(&prog).expect("adaptation succeeds");
        prop_assert!(ssp_ir::verify::verify(&adapted.program).is_ok());
        prop_assert!(ssp_ir::verify::verify_speculative(&adapted.program).is_ok());
        let report = lint_binary(&prog, &adapted);
        prop_assert!(report.is_clean(), "static lint clean: {report}");

        // Bounded simulation must halt (no livelock from triggers).
        let mut capped = mc.clone();
        capped.max_cycles = 30_000_000;
        let base = simulate(&prog, &capped);
        let ssp = simulate(&adapted.program, &capped);
        prop_assert!(base.halted, "baseline halts");
        prop_assert!(ssp.halted, "SSP binary halts (no trigger livelock)");
        // Never a catastrophic slowdown.
        prop_assert!(
            (ssp.cycles as f64) < base.cycles as f64 * 1.3,
            "ssp {} vs base {}", ssp.cycles, base.cycles
        );
    }

    #[test]
    fn adaptation_preserves_loads_under_perfect_memory(
        n in 32u64..128,
        mult in prop::sample::select(vec![7919u64, 13, 1]),
    ) {
        let prog = chase(n, 64, mult, 2);
        let tool = PostPassTool::new(MachineConfig::in_order());
        let adapted = tool.run(&prog).expect("adaptation succeeds");
        let mc = MachineConfig::in_order().with_memory_mode(MemoryMode::PerfectAll);
        let base = simulate(&prog, &mc);
        let ssp = simulate(&adapted.program, &mc);
        for (tag, s) in &base.loads {
            let got = ssp.loads.get(tag).map(|x| x.accesses).unwrap_or(0);
            prop_assert_eq!(s.accesses, got, "load {} count preserved", tag);
        }
    }
}

/// Every workload, under both precomputation models and both machine
/// configurations, must adapt to a binary the static linter passes with
/// zero diagnostics — trigger coverage is proved per hot path (miss and
/// double-fire), not just by a global trigger count.
#[test]
fn every_workload_and_model_lints_clean() {
    for w in ssp_workloads::suite(2002) {
        for model in [SpModel::Chaining, SpModel::Basic] {
            for mc in [MachineConfig::in_order(), MachineConfig::out_of_order()] {
                let mut opts = AdaptOptions::default();
                opts.select.force_model = Some(model);
                let tool = PostPassTool::new(mc).with_options(opts);
                // The in-pipeline gate already rejects lint-dirty output,
                // so success means clean; re-lint anyway to check the
                // standalone path agrees with the gate.
                let adapted = tool
                    .run(&w.program)
                    .unwrap_or_else(|e| panic!("{} ({model:?}) fails to adapt: {e}", w.name));
                let report = lint_binary(&w.program, &adapted);
                assert!(report.is_clean(), "{} ({model:?}) lints dirty: {report}", w.name);
            }
        }
    }
}
